package scalablebulk

// Replay bit-identity suite: a recorded run, replayed from its trace file,
// must reproduce the recording's ResultFingerprint byte for byte — for every
// registered protocol — and damaged trace files must be rejected with the
// tracefmt typed errors before a machine is built (mirroring the checkpoint-
// journal tamper tests of DESIGN.md §10).

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"scalablebulk/internal/tracefmt"
	"scalablebulk/internal/workload"
)

// recordRun records one run of app under protocol and returns the trace and
// the run's fingerprint.
func recordRun(t *testing.T, app, protocol string, cores, chunks int, seed int64) (*tracefmt.Trace, string) {
	t.Helper()
	prof, ok := AppByName(app)
	if !ok {
		t.Fatalf("unknown app %q", app)
	}
	cfg := DefaultConfig(cores, protocol)
	cfg.ChunksPerCore = chunks
	cfg.Seed = seed
	rec, factory, err := workload.Record("")
	if err != nil {
		t.Fatal(err)
	}
	cfg.WorkloadFactory = factory
	res, err := Run(prof, cfg)
	if err != nil {
		t.Fatalf("recording run: %v", err)
	}
	rec.SetRunMeta(protocol, FingerprintSHA(res))
	return rec.Trace(), ResultFingerprint(res)
}

// replayFingerprint replays tr under protocol with the recorded machine shape.
func replayFingerprint(t *testing.T, tr *tracefmt.Trace, protocol string) string {
	t.Helper()
	h := tr.Header
	cfg := DefaultConfig(h.Threads, protocol)
	cfg.ChunksPerCore, cfg.WarmupChunks = h.ChunksPerCore, h.WarmupPerCore
	cfg.Seed = h.Seed
	cfg.WorkloadFactory = workload.Replay(tr)
	res, err := Run(Profile{Name: h.App, Suite: "TRACE"}, cfg)
	if err != nil {
		t.Fatalf("replay under %s: %v", protocol, err)
	}
	return ResultFingerprint(res)
}

// TestReplayBitIdentity: for every registered protocol, record → encode →
// decode → replay reproduces the recording's fingerprint byte-equal. The
// trace crosses the wire format both ways, so this also pins that encoding
// loses nothing a run observes.
func TestReplayBitIdentity(t *testing.T) {
	for _, p := range RegisteredProtocols() {
		protocol := p.Name
		t.Run(protocol, func(t *testing.T) {
			t.Parallel()
			tr, want := recordRun(t, "Radix", protocol, 4, 6, 11)
			back, err := tracefmt.Decode(tracefmt.Encode(tr))
			if err != nil {
				t.Fatalf("decode∘encode: %v", err)
			}
			got := replayFingerprint(t, back, protocol)
			if got != want {
				t.Errorf("replayed fingerprint differs from recording:\n--- recorded\n%s--- replayed\n%s", want, got)
			}
			if sha := fingerprintHash(got); sha != back.Header.Fingerprint {
				t.Errorf("embedded fingerprint sha %s != replayed %s", back.Header.Fingerprint, sha)
			}
		})
	}
}

// TestReplayCrossProtocol: a trace recorded under one protocol replays to
// completion under every other — chunk streams are protocol-independent, so
// the same workload confronts all engines.
func TestReplayCrossProtocol(t *testing.T) {
	tr, _ := recordRun(t, "FFT", ProtoScalableBulk, 4, 4, 3)
	for _, p := range RegisteredProtocols() {
		protocol := p.Name
		t.Run(protocol, func(t *testing.T) {
			t.Parallel()
			first := replayFingerprint(t, tr, protocol)
			again := replayFingerprint(t, tr, protocol)
			if first != again {
				t.Errorf("two replays under %s differ:\n--- run 1\n%s--- run 2\n%s", protocol, first, again)
			}
		})
	}
}

// TestReplayShapeValidation: replay refuses machine shapes the trace cannot
// serve — wrong core count at source construction, oversized chunk or
// warm-up budgets through the Validator hook — as build errors, never
// mid-run panics.
func TestReplayShapeValidation(t *testing.T) {
	tr, _ := recordRun(t, "Radix", ProtoScalableBulk, 4, 4, 3)
	run := func(mutate func(*Config)) error {
		h := tr.Header
		cfg := DefaultConfig(h.Threads, ProtoScalableBulk)
		cfg.ChunksPerCore, cfg.WarmupChunks = h.ChunksPerCore, h.WarmupPerCore
		cfg.Seed = h.Seed
		cfg.WorkloadFactory = workload.Replay(tr)
		mutate(&cfg)
		_, err := Run(Profile{Name: h.App}, cfg)
		return err
	}
	if err := run(func(cfg *Config) {}); err != nil {
		t.Fatalf("recorded shape must replay cleanly: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"more cores":  func(cfg *Config) { cfg.Cores = 8 },
		"fewer cores": func(cfg *Config) { cfg.Cores = 2 },
		"more chunks": func(cfg *Config) { cfg.ChunksPerCore++ },
		"more warmup": func(cfg *Config) { cfg.WarmupChunks++ },
	} {
		if err := run(mutate); err == nil {
			t.Errorf("%s: replay accepted a shape the trace cannot serve", name)
		}
	}
}

// TestReplayFileTamper: truncated and corrupted trace files surface the
// tracefmt typed errors through system.Run (via Config.Workload =
// "replay:PATH"), so a damaged trace can never silently replay as something
// else.
func TestReplayFileTamper(t *testing.T) {
	tr, _ := recordRun(t, "Radix", ProtoScalableBulk, 4, 4, 3)
	data := tracefmt.Encode(tr)
	dir := t.TempDir()

	runFile := func(path string) error {
		h := tr.Header
		cfg := DefaultConfig(h.Threads, ProtoScalableBulk)
		cfg.ChunksPerCore, cfg.WarmupChunks = h.ChunksPerCore, h.WarmupPerCore
		cfg.Seed = h.Seed
		cfg.Workload = "replay:" + path
		_, err := Run(Profile{Name: h.App}, cfg)
		return err
	}

	good := filepath.Join(dir, "good.sbwt")
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runFile(good); err != nil {
		t.Fatalf("intact trace must replay: %v", err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"truncated mid-file", func(b []byte) []byte { return b[:len(b)/2] }, tracefmt.ErrChecksum},
		{"truncated to magic", func(b []byte) []byte { return b[:4] }, tracefmt.ErrTruncated},
		{"flipped byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		}, tracefmt.ErrChecksum},
		{"wrong magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}, tracefmt.ErrMagic},
		{"not a trace", func(b []byte) []byte { return []byte("{\"journal\": true}") }, tracefmt.ErrMagic},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "tampered.sbwt")
			if err := os.WriteFile(path, tc.mutate(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			err := runFile(path)
			if err == nil {
				t.Fatal("tampered trace replayed without error")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("missing file", func(t *testing.T) {
		if err := runFile(filepath.Join(dir, "nope.sbwt")); err == nil {
			t.Fatal("missing trace file replayed without error")
		}
	})
}
