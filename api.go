// Package scalablebulk is a from-scratch reproduction of "ScalableBulk:
// Scalable Cache Coherence for Atomic Blocks in a Lazy Environment" (Qian,
// Ahn, Torrellas — MICRO 2010): a cycle-level simulator of a chunk-based
// multicore (2D torus, private L1/L2, distributed directories, hardware
// address signatures) running the ScalableBulk commit protocol and the three
// baselines the paper compares against (Scalable TCC, SEQ-PRO, BulkSC), plus
// synthetic models of the paper's 18 SPLASH-2/PARSEC applications and a
// harness that regenerates every figure of the evaluation section.
//
// Quick start:
//
//	prof, _ := scalablebulk.AppByName("Radix")
//	cfg := scalablebulk.DefaultConfig(64, scalablebulk.ProtoScalableBulk)
//	res, err := scalablebulk.Run(prof, cfg)
//	// res.Cycles, res.Breakdown, res.MeanCommitLatency(), ...
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for measured
// results vs the paper.
package scalablebulk

import (
	"context"
	"fmt"
	"strings"

	"scalablebulk/internal/check"
	"scalablebulk/internal/core"
	"scalablebulk/internal/protocol"
	"scalablebulk/internal/stats"
	"scalablebulk/internal/system"
	"scalablebulk/internal/workload"
)

// Protocol names (Table 3 of the paper, plus the OCI ablation). These are
// registry keys; RegisteredProtocols enumerates everything that linked in.
const (
	// ProtoScalableBulk is the paper's protocol (package internal/core).
	ProtoScalableBulk = system.ProtoScalableBulk
	// ProtoTCC is the Scalable TCC baseline.
	ProtoTCC = system.ProtoTCC
	// ProtoSEQ is the SEQ-PRO baseline from SRC.
	ProtoSEQ = system.ProtoSEQ
	// ProtoBulkSC is the BulkSC centralized-arbiter baseline.
	ProtoBulkSC = system.ProtoBulkSC
	// ProtoNoOCI is ScalableBulk with Optimistic Commit Initiation
	// disabled — the Figure 4(c) conservative ablation. It registers itself
	// from internal/core; nothing in internal/system names it.
	ProtoNoOCI = core.NameNoOCI
)

// Protocols lists the four evaluated protocols in the paper's order.
var Protocols = system.Protocols

// ProtocolInfo describes one protocol in the registry.
type ProtocolInfo struct {
	// Name is the registry key accepted by Config.Protocol.
	Name string
	// Doc is the protocol's one-line description.
	Doc string
	// Evaluated marks the four Table 3 protocols the figure sweeps compare;
	// variants (e.g. the OCI ablation) leave it false.
	Evaluated bool
}

// RegisteredProtocols enumerates every protocol linked into the binary, the
// paper's four first, variants after. The CLIs' -protocols flags print it.
func RegisteredProtocols() []ProtocolInfo {
	var out []ProtocolInfo
	for _, d := range protocol.Descriptors() {
		out = append(out, ProtocolInfo{Name: d.Name, Doc: d.Doc, Evaluated: d.Evaluated})
	}
	return out
}

// IsProtocol reports whether name is a registered protocol — the check the
// CLIs run on -protocol flags before building a machine.
func IsProtocol(name string) bool {
	_, ok := protocol.Lookup(name)
	return ok
}

// Config describes one simulation; DefaultConfig gives the Table 2 machine.
type Config = system.Config

// Result carries everything one run measured: execution time, the
// Useful/CacheMiss/Commit/Squash breakdown, commit latencies, directories
// per commit, squash classification and traffic counters.
type Result = system.Result

// Breakdown is the Figures 7/8 cycle accounting.
type Breakdown = stats.Breakdown

// Profile is a synthetic application model (§5: SPLASH-2 and PARSEC).
type Profile = workload.Profile

// DefaultConfig returns the paper's Table 2 machine configuration for the
// given core count and protocol.
func DefaultConfig(cores int, protocol string) Config {
	return system.DefaultConfig(cores, protocol)
}

// Run simulates one (application, machine, protocol) combination.
func Run(prof Profile, cfg Config) (*Result, error) { return system.Run(prof, cfg) }

// RunScaled divides a whole-problem chunk count evenly across the machine
// (the paper's strong-scaling setup), so speedups compare equal work.
func RunScaled(prof Profile, cfg Config, totalChunks int) (*Result, error) {
	return system.RunScaled(prof, cfg, totalChunks)
}

// --- Resilience layer (DESIGN.md §10) ---

// ErrInvariantViolation marks a run failed by the I1–I5 invariant checker
// (errors.Is); the concrete *InvariantViolationError carries the individual
// violations, the machine dump, and the flight-recorder tail, and also
// matches a bare invariant target (errors.Is(err, check.I2)).
var ErrInvariantViolation = check.ErrViolation

// InvariantViolationError is the structured invariant-failure report.
type InvariantViolationError = check.ViolationError

// ErrDeadlock marks a run that stopped making progress (errors.Is); the
// concrete *DeadlockError carries the truncated machine dump.
var ErrDeadlock = system.ErrDeadlock

// ErrAborted marks a run stopped by cancellation or a wall-clock deadline
// (errors.Is); the concrete *AbortError carries the cause.
var ErrAborted = system.ErrAborted

// ErrShardHazard marks a sharded run that aborted fail-stop because a
// page's first-touch home raced across shards in one parallel round
// (errors.Is); rerun the point with Shards=0 — results are identical
// whenever the sharded run completes at all.
var ErrShardHazard = system.ErrShardHazard

// ShardHazardError is the structured first-touch-collision abort report.
type ShardHazardError = system.ShardHazardError

// DeadlockError is the structured no-progress abort report.
type DeadlockError = system.DeadlockError

// AbortError is the structured cancellation/deadline abort report,
// distinguishing a withdrawn budget from a deadlock.
type AbortError = system.AbortError

// RetryPolicy retries transient MaxCycles aborts under fault profiles with
// escalating cycle budgets and bounded jittered backoff.
type RetryPolicy = system.RetryPolicy

// RunAttempt is one recorded attempt of a retried run.
type RunAttempt = system.RunAttempt

// RetryError reports a run that failed through every allowed attempt.
type RetryError = system.RetryError

// DefaultRetryPolicy is the soak runner's policy: 3 attempts, budget ×4 per
// retry, 25ms base backoff with 50% jitter capped at 2s.
func DefaultRetryPolicy() RetryPolicy { return system.DefaultRetryPolicy() }

// RunContext is Run with cancellation and the Config.RunTimeout wall-clock
// deadline; aborts surface as *AbortError, deadlocks as *DeadlockError.
func RunContext(ctx context.Context, prof Profile, cfg Config) (*Result, error) {
	return system.RunContext(ctx, prof, cfg)
}

// RunScaledContext is RunScaled with cancellation.
func RunScaledContext(ctx context.Context, prof Profile, cfg Config, totalChunks int) (*Result, error) {
	return system.RunScaledContext(ctx, prof, cfg, totalChunks)
}

// RunWithRetry runs with the retry policy applied to transient aborts; the
// attempt history is recorded on the Result (success) or in the returned
// *RetryError (final failure).
func RunWithRetry(ctx context.Context, prof Profile, cfg Config, pol RetryPolicy) (*Result, error) {
	return system.RunWithRetry(ctx, prof, cfg, pol)
}

// Splash2 returns the 11 SPLASH-2 application models.
func Splash2() []Profile { return workload.Splash2() }

// Parsec returns the 7 PARSEC application models.
func Parsec() []Profile { return workload.Parsec() }

// Apps returns all 18 application models, SPLASH-2 first.
func Apps() []Profile { return workload.All() }

// AppByName finds an application model by name (e.g. "Radix").
func AppByName(name string) (Profile, bool) { return workload.ByName(name) }

// --- Workload sources (DESIGN.md §14) ---

// WorkloadInfo describes one registered workload source.
type WorkloadInfo struct {
	// Name is the registry key accepted by Config.Workload and -workload.
	Name string
	// Doc is the source's one-line description.
	Doc string
	// Adversarial marks generators aimed at commit-protocol weak spots.
	Adversarial bool
}

// RegisteredWorkloads enumerates every workload source linked into the
// binary, the synthetic default first. The CLIs' -workloads listing and the
// conformance/differential suites iterate it.
func RegisteredWorkloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, d := range workload.Descriptors() {
		out = append(out, WorkloadInfo{Name: d.Name, Doc: d.Doc, Adversarial: d.Adversarial})
	}
	return out
}

// IsWorkload reports whether spec is a valid Config.Workload value: a
// registered source name or a "replay:PATH" spec (the file itself is only
// read when a run is built).
func IsWorkload(spec string) bool {
	_, err := workload.Resolve(spec)
	return err == nil
}

// WorkloadProfile returns the label Profile a named non-synthetic workload
// source runs under (Result.App, golden names, journal keys). Sweep tools use
// it to accept workload names wherever an application name is expected.
func WorkloadProfile(name string) (Profile, bool) { return workload.SourceProfile(name) }

// ResultFingerprint renders every deterministic measurement of a run as one
// canonical string: execution time, the full per-core breakdowns, every
// raw collector sample series (commit latencies, directory counts, queue
// samples, squash classification, failures, nacks) and the traffic counters.
// Two runs of the same (config, seed) must produce byte-identical
// fingerprints regardless of process, goroutine scheduling, or whether the
// result came from a serial call or a parallel sweep — that is the contract
// the determinism tests enforce.
func ResultFingerprint(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/%d cycles=%d committed=%d squashes=%d\n",
		r.App, r.Protocol, r.Cores, r.Cycles, r.ChunksCommitted, r.Squashes)
	fmt.Fprintf(&b, "breakdown useful=%d cachemiss=%d commit=%d squash=%d\n",
		r.Breakdown.Useful, r.Breakdown.CacheMiss, r.Breakdown.Commit, r.Breakdown.Squash)
	for i, pc := range r.PerCore {
		fmt.Fprintf(&b, "core%d useful=%d cachemiss=%d commit=%d squash=%d committed=%d\n",
			i, pc.Useful, pc.CacheMiss, pc.Commit, pc.Squash, r.PerCoreCommitted[i])
	}
	fmt.Fprintf(&b, "commitlat %v\n", r.Coll.CommitLat)
	fmt.Fprintf(&b, "dirstotal %v\n", r.Coll.DirsTotal)
	fmt.Fprintf(&b, "dirswrite %v\n", r.Coll.DirsWrite)
	fmt.Fprintf(&b, "queuesamples %v\n", r.Coll.QueueSamples)
	fmt.Fprintf(&b, "squashes conflict=%d aliasing=%d failures=%d readnacks=%d collcommitted=%d\n",
		r.Coll.SquashTrueConflict, r.Coll.SquashAliasing, r.Coll.CommitFailures,
		r.Coll.ReadNacks, r.Coll.ChunksCommitted)
	fmt.Fprintf(&b, "traffic msgs=%d delivered=%d flithops=%d bykind=%v\n",
		r.Traffic.Messages, r.Traffic.Delivered, r.Traffic.FlitHops, r.Traffic.ByKind)
	return b.String()
}
