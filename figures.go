package scalablebulk

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scalablebulk/internal/metrics"
	"scalablebulk/internal/msg"
	"scalablebulk/internal/stats"
	"scalablebulk/internal/workload"
)

// Session runs and caches simulations for the figure generators, so figures
// that share configurations (most of them) do not repeat runs. A Session is
// sized by ChunksPerCore at 64 processors; smaller machines get
// proportionally more chunks per core (strong scaling over the same total
// work), exactly like running the paper's reference inputs on fewer threads.
//
// A Session is safe for concurrent use: the cache is a single-flight map, so
// any number of goroutines can ask for any mix of points and each simulation
// runs exactly once. Every simulation is an independent deterministic
// machine, so execution order and parallelism cannot affect any Result —
// only wall-clock time. The determinism tests in determinism_test.go hold
// serial and parallel sweeps to byte-identical output.
type Session struct {
	// ChunksPerCore at 64 cores; the whole-problem work is 64× this.
	ChunksPerCore int
	// Seed makes every run deterministic.
	Seed int64

	// Configure, when non-nil, adjusts each point's materialized Config
	// before it runs (fault profiles, budgets, RunTimeout). It must be set
	// before the first Result/Sweep call and be deterministic: the
	// checkpoint journal keys entries by the configured Config's hash.
	Configure func(*Config)
	// Retry, when non-nil, retries transient MaxCycles aborts under fault
	// profiles with escalated cycle budgets (see RunWithRetry). Set before
	// first use.
	Retry *RetryPolicy
	// CrashDir, when non-empty, receives one JSON crash bundle per
	// panicking point (panics are isolated per point either way — a panic
	// becomes that point's *CrashError while the rest of the sweep keeps
	// running). Set before first use.
	CrashDir string

	// OnProgress, when non-nil, receives a heartbeat every ProgressInterval
	// while SweepContext runs, plus one final heartbeat when the sweep ends.
	// It is called from a dedicated goroutine, never from sweep workers.
	OnProgress func(SweepProgress)
	// ProgressInterval is the heartbeat period; ≤ 0 selects 10 seconds.
	ProgressInterval time.Duration
	// Metrics, when non-nil, accumulates each completed run's collector and
	// traffic counters (see metrics.ObserveRun) plus live sweep_done /
	// sweep_total gauges, so a -telemetry HTTP endpoint can watch a soak.
	Metrics *metrics.Registry

	mu      sync.Mutex
	out     io.Writer
	cache   map[runKey]*cacheEntry
	journal *Journal

	// nRestored counts points satisfied from the journal (SweepOutcome
	// reports per-sweep deltas).
	nRestored atomic.Int64

	// testPointHook, when non-nil, runs at the start of each point's
	// simulation inside the worker's panic isolation — the test seam for
	// injected panics and mid-sweep cancellation.
	testPointHook func(Point)
}

type runKey struct {
	app      string
	protocol string
	cores    int
}

// cacheEntry is a single-flight cache slot: the goroutine that creates the
// entry runs the simulation and closes done; everyone else blocks on done.
type cacheEntry struct {
	done chan struct{}
	res  *Result
	err  error
}

// Point identifies one figure-sweep simulation: an application under a
// protocol on a machine size.
type Point struct {
	App      string
	Protocol string
	Cores    int
}

// NewSession builds a figure-generation session. chunksPerCore ≤ 0 selects
// a default sized for minutes-scale regeneration of every figure.
func NewSession(chunksPerCore int, seed int64, out io.Writer) *Session {
	if chunksPerCore <= 0 {
		chunksPerCore = 16
	}
	if out == nil {
		out = io.Discard
	}
	return &Session{ChunksPerCore: chunksPerCore, Seed: seed, out: out, cache: map[runKey]*cacheEntry{}}
}

// SetOut redirects the generated rows to w (nil selects io.Discard). It may
// be called between figure renders from any goroutine.
func (s *Session) SetOut(w io.Writer) {
	if w == nil {
		w = io.Discard
	}
	s.mu.Lock()
	s.out = w
	s.mu.Unlock()
}

func (s *Session) printf(format string, args ...any) {
	s.mu.Lock()
	w := s.out
	s.mu.Unlock()
	fmt.Fprintf(w, format, args...)
}

// TotalWork is the whole-problem chunk count shared by all machine sizes.
func (s *Session) TotalWork() int { return 64 * s.ChunksPerCore }

// UseJournal attaches an open checkpoint journal: completed points are
// recorded to it and verified-complete entries are restored instead of
// re-run. A journal may be shared by several Sessions (entries are keyed by
// point and config hash). Attach before the first Result/Sweep call.
func (s *Session) UseJournal(j *Journal) {
	s.mu.Lock()
	s.journal = j
	s.mu.Unlock()
}

// AttachJournal opens (or creates) the JSONL checkpoint journal at path and
// attaches it, returning the number of entries loaded.
func (s *Session) AttachJournal(path string) (int, error) {
	j, err := OpenJournal(path)
	if err != nil {
		return 0, err
	}
	s.UseJournal(j)
	return j.Len(), nil
}

// Journal returns the attached journal, if any.
func (s *Session) Journal() *Journal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal
}

// Result runs (or returns the cached) simulation of app × protocol × cores.
// Safe for concurrent use; concurrent requests for the same point share one
// run (single flight).
func (s *Session) Result(app, protocol string, cores int) (*Result, error) {
	return s.result(context.Background(), Point{app, protocol, cores})
}

func (s *Session) result(ctx context.Context, p Point) (*Result, error) {
	k := runKey{p.App, p.Protocol, p.Cores}
	s.mu.Lock()
	if s.cache == nil {
		s.cache = map[runKey]*cacheEntry{}
	}
	e, ok := s.cache[k]
	if !ok {
		e = &cacheEntry{done: make(chan struct{})}
		s.cache[k] = e
	}
	s.mu.Unlock()
	if ok {
		select {
		case <-e.done:
			return e.res, e.err
		case <-ctx.Done():
			return nil, &AbortError{App: p.App, Protocol: p.Protocol,
				Cores: p.Cores, Cause: ctx.Err()}
		}
	}
	e.res, e.err = s.run(ctx, k)
	if e.err != nil && errors.Is(e.err, ErrAborted) {
		// An abort is a withdrawn budget, not a result: drop the cache slot
		// so a later call — e.g. a resumed sweep on this session — re-runs
		// the point instead of replaying the abort.
		s.mu.Lock()
		delete(s.cache, k)
		s.mu.Unlock()
	}
	close(e.done)
	return e.res, e.err
}

// SweepPointConfig materializes the Config a Session-style sweep gives point
// p: the Table 2 defaults for the point's machine, the shared seed, and the
// strong-scaling work division (chunksPerCore is the per-core chunk count at
// 64 processors; smaller machines get proportionally more chunks over the
// same total work). The farm workers build remote points through this same
// function, so a point computed by a worker process hashes — and therefore
// journals, dedups, and fingerprints — identically to the same point run
// in-process.
func SweepPointConfig(p Point, chunksPerCore int, seed int64) Config {
	cfg := DefaultConfig(p.Cores, p.Protocol)
	cfg.Seed = seed
	cfg.ChunksPerCore = 64 * chunksPerCore / p.Cores
	if cfg.ChunksPerCore < 1 {
		cfg.ChunksPerCore = 1
	}
	return cfg
}

// ResolvePointProfile resolves a sweep point's App label: an application
// model by name, or a registered workload source sweeping under its own name
// (in which case cfg.Workload is set to the source, matching how the point
// would hash when run through a Session).
func ResolvePointProfile(app string, cfg *Config) (Profile, error) {
	if prof, ok := workload.ByName(app); ok {
		return prof, nil
	}
	if prof, ok := workload.SourceProfile(app); ok {
		if cfg.Workload == "" {
			cfg.Workload = app
		}
		return prof, nil
	}
	return Profile{}, fmt.Errorf("unknown application or workload %q", app)
}

// pointConfig materializes one point's Config: Table 2 defaults, the
// session's strong-scaling work division and seed, then the Configure hook.
func (s *Session) pointConfig(k runKey) Config {
	cfg := SweepPointConfig(Point{k.app, k.protocol, k.cores}, s.ChunksPerCore, s.Seed)
	if s.Configure != nil {
		s.Configure(&cfg)
	}
	return cfg
}

func (s *Session) run(ctx context.Context, k runKey) (res *Result, err error) {
	p := Point{k.app, k.protocol, k.cores}
	cfg := s.pointConfig(k)
	prof, rerr := ResolvePointProfile(k.app, &cfg)
	if rerr != nil {
		return nil, rerr
	}
	hash := ConfigHash(cfg)
	if j := s.Journal(); j != nil {
		if r, attempts, ok := j.Lookup(p, hash); ok {
			r.Attempts = attempts
			s.nRestored.Add(1)
			if s.Metrics != nil {
				metrics.ObserveRun(s.Metrics, r.Coll, r.Traffic)
				metrics.ObserveSharding(s.Metrics, r.Sharding, r.RingResidency)
			}
			return r, nil
		}
	}
	start := time.Now()
	// Panic isolation: a panicking point resolves to a *CrashError (with a
	// crash bundle when CrashDir is set) instead of unwinding the worker.
	defer func() {
		if rec := recover(); rec != nil {
			cr := NewCrashReport(p, cfg, rec)
			ce := &CrashError{Point: p, Report: cr}
			if s.CrashDir != "" {
				ce.BundlePath, ce.WriteErr = WriteCrashBundle(s.CrashDir, cr)
			}
			res, err = nil, ce
		}
	}()
	if s.testPointHook != nil {
		s.testPointHook(p)
	}
	if s.Retry != nil {
		res, err = RunWithRetry(ctx, prof, cfg, *s.Retry)
	} else {
		res, err = RunContext(ctx, prof, cfg)
	}
	if err != nil {
		return nil, err
	}
	if j := s.Journal(); j != nil {
		if jerr := j.Record(p, hash, res, time.Since(start)); jerr != nil {
			// A completed point the journal cannot persist is a real
			// failure for a durable sweep: surface it rather than let a
			// resume silently redo (or worse, trust stale) work.
			return nil, fmt.Errorf("journal %s: %w", j.Path(), jerr)
		}
	}
	if s.Metrics != nil {
		metrics.ObserveRun(s.Metrics, res.Coll, res.Traffic)
		metrics.ObserveSharding(s.Metrics, res.Sharding, res.RingResidency)
	}
	return res, nil
}

// SweepPoints enumerates, in a fixed deterministic order, every simulation
// the full figure set needs: each application under each protocol at 32 and
// 64 processors, plus the 1-processor ScalableBulk baselines.
func (s *Session) SweepPoints() []Point {
	var pts []Point
	for _, prof := range Apps() {
		pts = append(pts, Point{prof.Name, ProtoScalableBulk, 1})
		for _, protocol := range Protocols {
			for _, cores := range []int{32, 64} {
				pts = append(pts, Point{prof.Name, protocol, cores})
			}
		}
	}
	return pts
}

// Sweep populates the cache with every SweepPoints simulation, executing the
// points as jobs on a bounded worker pool. Workers claim points in whatever
// order scheduling allows; results land keyed by point, so the outcome is
// identical to running the same points serially. parallelism ≤ 0 selects
// GOMAXPROCS. The returned error, if any, is the error of the earliest
// failing point in SweepPoints order, independent of worker interleaving.
func (s *Session) Sweep(parallelism int) error {
	return s.SweepList(s.SweepPoints(), parallelism)
}

// SweepList is Sweep over an arbitrary point list.
func (s *Session) SweepList(points []Point, parallelism int) error {
	return s.SweepContext(context.Background(), points, parallelism).Err()
}

// PointFailure is one failed sweep point (its error may be a *CrashError).
type PointFailure struct {
	Point Point
	Err   error
}

// SweepOutcome summarizes a sweep: it distinguishes "completed with point
// failures" (some points crashed or errored while the rest ran to the end)
// from "aborted" (the context was canceled or its deadline passed, leaving
// points unrun).
type SweepOutcome struct {
	// Points is the number of points requested.
	Points int
	// Completed counts points that produced a result (run, cached, or
	// restored from the journal).
	Completed int
	// Restored counts points satisfied from the checkpoint journal during
	// this sweep (a subset of Completed).
	Restored int
	// Failures lists failed points in input order, deduplicated. Aborted
	// points are not failures; they simply were not run.
	Failures []PointFailure
	// Aborted reports that the sweep stopped early on cancellation or
	// deadline.
	Aborted bool
}

// Err reduces the outcome to the historical Sweep contract: the error of the
// earliest failing point in input order, ErrAborted for a clean-but-aborted
// sweep, nil otherwise.
func (o *SweepOutcome) Err() error {
	if len(o.Failures) > 0 {
		return o.Failures[0].Err
	}
	if o.Aborted {
		return ErrAborted
	}
	return nil
}

// SweepProgress is one heartbeat of a running sweep, delivered to
// Session.OnProgress.
type SweepProgress struct {
	// Done counts points resolved so far (completed or failed) out of Total.
	Done, Total int
	// Failed counts points resolved with an error so far.
	Failed int
	// Elapsed is the wall-clock time since the sweep started. ETA linearly
	// extrapolates the remaining points from the pace so far; it is zero
	// until the first point resolves.
	Elapsed, ETA time.Duration
	// LastPoint and LastFingerprint identify the most recently completed
	// point and the short hash of its ResultFingerprint — a quick visual
	// check that a resumed soak reproduces the previous runs.
	LastPoint       Point
	LastFingerprint string
	// Final marks the closing heartbeat sent after the last point resolves.
	Final bool
}

// SweepContext runs the points on a bounded worker pool with cancellation:
// when ctx is canceled, workers stop claiming points, in-flight simulations
// abort at their next cancellation poll, and the outcome reports Aborted. A
// panicking point is isolated into a *CrashError (and a crash bundle when
// CrashDir is set) while the remaining points keep running; every completed
// point is recorded in the attached journal, so an interrupted sweep resumes
// where it left off.
func (s *Session) SweepContext(ctx context.Context, points []Point, parallelism int) *SweepOutcome {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(points) {
		parallelism = len(points)
	}
	restored0 := s.nRestored.Load()
	type slot struct {
		ran bool
		err error
	}
	slots := make([]slot, len(points))
	work := make(chan int, len(points))
	for i := range points {
		work <- i
	}
	close(work)

	// Sweep progress shared between workers and the heartbeat goroutine.
	start := time.Now()
	var done, failed atomic.Int64
	var lastMu sync.Mutex
	var last Point
	var lastFP string
	snapshot := func(final bool) SweepProgress {
		p := SweepProgress{
			Done: int(done.Load()), Total: len(points),
			Failed:  int(failed.Load()),
			Elapsed: time.Since(start), Final: final,
		}
		if p.Done > 0 {
			p.ETA = time.Duration(float64(p.Elapsed) / float64(p.Done) * float64(p.Total-p.Done))
		}
		lastMu.Lock()
		p.LastPoint, p.LastFingerprint = last, lastFP
		lastMu.Unlock()
		if s.Metrics != nil {
			s.Metrics.Gauge("sweep_done").Set(float64(p.Done))
			s.Metrics.Gauge("sweep_total").Set(float64(p.Total))
		}
		return p
	}
	stopHB := make(chan struct{})
	hbDone := make(chan struct{})
	if s.OnProgress != nil || s.Metrics != nil {
		interval := s.ProgressInterval
		if interval <= 0 {
			interval = 10 * time.Second
		}
		go func() {
			defer close(hbDone)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if p := snapshot(false); s.OnProgress != nil {
						s.OnProgress(p)
					}
				case <-stopHB:
					return
				}
			}
		}()
	} else {
		close(hbDone)
	}

	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					return // unclaimed points stay !ran
				}
				r, err := s.result(ctx, points[i])
				slots[i] = slot{ran: true, err: err}
				if err != nil {
					failed.Add(1)
				} else if r != nil {
					lastMu.Lock()
					last, lastFP = points[i], fingerprintHash(ResultFingerprint(r))[:12]
					lastMu.Unlock()
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stopHB)
	<-hbDone
	if p := snapshot(true); s.OnProgress != nil {
		s.OnProgress(p)
	}
	out := &SweepOutcome{Points: len(points), Aborted: ctx.Err() != nil}
	seen := map[Point]bool{}
	for i, sl := range slots {
		switch {
		case !sl.ran:
			// not claimed: only happens on abort
		case sl.err == nil:
			out.Completed++
		case errors.Is(sl.err, ErrAborted):
			out.Aborted = true
		case !seen[points[i]]:
			seen[points[i]] = true
			out.Failures = append(out.Failures, PointFailure{points[i], sl.err})
		}
	}
	out.Restored = int(s.nRestored.Load() - restored0)
	return out
}

// Resume attaches the checkpoint journal at path and sweeps every
// SweepPoints point: verified-complete points are restored from the journal
// and only the remainder is simulated, so an interrupted sweep continues
// where it left off and still produces byte-identical figure output.
func (s *Session) Resume(ctx context.Context, path string, parallelism int) (*SweepOutcome, error) {
	if _, err := s.AttachJournal(path); err != nil {
		return nil, err
	}
	return s.SweepContext(ctx, s.SweepPoints(), parallelism), nil
}

// Inject stores res as the completed result for p, as if the session had run
// the point itself: later Result calls and figure renders are served from
// the cache. The farm thin clients (sbsim/sbfig/sbbench/sbsoak -server)
// inject results computed by remote workers so figures render locally from
// remote runs. A point that already has a cache slot keeps it (injection
// never overwrites a run in flight or a completed result).
func (s *Session) Inject(p Point, res *Result) {
	k := runKey{p.App, p.Protocol, p.Cores}
	e := &cacheEntry{done: make(chan struct{}), res: res}
	close(e.done)
	s.mu.Lock()
	if s.cache == nil {
		s.cache = map[runKey]*cacheEntry{}
	}
	if _, ok := s.cache[k]; !ok {
		s.cache[k] = e
	}
	s.mu.Unlock()
}

// Prefetch is the historical name of Sweep, kept for callers that predate
// the sweep API.
func (s *Session) Prefetch(parallelism int) error { return s.Sweep(parallelism) }

func names(ps []Profile) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// executionTime generates one Figure 7/8 panel: per-app normalized execution
// time breakdowns and speedups for one protocol, 32 and 64 processors,
// normalized to the single-processor ScalableBulk run on the same work.
func (s *Session) executionTime(title string, apps []string, protocol string) error {
	s.printf("%s — execution time normalized to 1-processor ScalableBulk (protocol %s)\n", title, protocol)
	s.printf("%-16s %7s %9s %9s %9s %9s %9s %9s\n",
		"app_procs", "speedup", "normtime", "useful", "cachemiss", "commit", "squash", "cycles")
	var avg [2]struct {
		speedup, norm float64
		n             int
	}
	for _, app := range apps {
		base, err := s.Result(app, ProtoScalableBulk, 1)
		if err != nil {
			return err
		}
		for i, cores := range []int{32, 64} {
			r, err := s.Result(app, protocol, cores)
			if err != nil {
				return err
			}
			speedup := float64(base.Cycles) / float64(r.Cycles)
			norm := 1 / speedup
			tot := float64(r.Breakdown.Total())
			s.printf("%-16s %7.1f %9.4f %9.3f %9.3f %9.3f %9.3f %9d\n",
				fmt.Sprintf("%s_%d", app, cores), speedup, norm,
				float64(r.Breakdown.Useful)/tot, float64(r.Breakdown.CacheMiss)/tot,
				float64(r.Breakdown.Commit)/tot, float64(r.Breakdown.Squash)/tot,
				r.Cycles)
			avg[i].speedup += speedup
			avg[i].norm += norm
			avg[i].n++
		}
	}
	for i, cores := range []int{32, 64} {
		s.printf("%-16s %7.1f %9.4f\n",
			fmt.Sprintf("AVERAGE_%d", cores), avg[i].speedup/float64(avg[i].n), avg[i].norm/float64(avg[i].n))
	}
	return nil
}

// Figure7 regenerates the SPLASH-2 execution-time panels for one protocol
// (call once per protocol for the paper's four panels).
func (s *Session) Figure7(protocol string) error {
	return s.executionTime("Figure 7 (SPLASH-2)", names(Splash2()), protocol)
}

// Figure8 regenerates the PARSEC execution-time panels for one protocol.
func (s *Session) Figure8(protocol string) error {
	return s.executionTime("Figure 8 (PARSEC)", names(Parsec()), protocol)
}

// dirsPerCommit generates Figure 9/10: average directories accessed per
// chunk commit under ScalableBulk, split into write groups and read-only
// groups, for 32 and 64 processors.
func (s *Session) dirsPerCommit(title string, apps []string) error {
	s.printf("%s — directories accessed per chunk commit (ScalableBulk)\n", title)
	s.printf("%-16s %8s %8s %8s\n", "app_procs", "total", "write", "readonly")
	var sumT, sumW [2]float64
	for _, app := range apps {
		for i, cores := range []int{32, 64} {
			r, err := s.Result(app, ProtoScalableBulk, cores)
			if err != nil {
				return err
			}
			tot, wr := r.Coll.MeanDirsPerCommit()
			s.printf("%-16s %8.2f %8.2f %8.2f\n",
				fmt.Sprintf("%s_%d", app, cores), tot, wr, tot-wr)
			sumT[i] += tot
			sumW[i] += wr
		}
	}
	n := float64(len(apps))
	for i, cores := range []int{32, 64} {
		s.printf("%-16s %8.2f %8.2f %8.2f\n",
			fmt.Sprintf("AVERAGE_%d", cores), sumT[i]/n, sumW[i]/n, (sumT[i]-sumW[i])/n)
	}
	return nil
}

// Figure9 regenerates the SPLASH-2 directories-per-commit averages.
func (s *Session) Figure9() error {
	return s.dirsPerCommit("Figure 9 (SPLASH-2)", names(Splash2()))
}

// Figure10 regenerates the PARSEC directories-per-commit averages.
func (s *Session) Figure10() error {
	return s.dirsPerCommit("Figure 10 (PARSEC)", names(Parsec()))
}

// dirsDistribution generates Figure 11/12: the per-app distribution of the
// number of directories accessed per commit at 64 processors.
func (s *Session) dirsDistribution(title string, apps []string) error {
	s.printf("%s — %% of commits accessing N directories (ScalableBulk, 64 procs)\n", title)
	s.printf("%-14s", "app")
	for i := 0; i <= 14; i++ {
		s.printf("%6d", i)
	}
	s.printf("%6s\n", "more")
	for _, app := range apps {
		r, err := s.Result(app, ProtoScalableBulk, 64)
		if err != nil {
			return err
		}
		d := r.Coll.DirsDistribution(14)
		s.printf("%-14s", app)
		for _, v := range d {
			s.printf("%6.1f", v)
		}
		s.printf("\n")
	}
	return nil
}

// Figure11 regenerates the SPLASH-2 directory-count distribution.
func (s *Session) Figure11() error {
	return s.dirsDistribution("Figure 11 (SPLASH-2)", names(Splash2()))
}

// Figure12 regenerates the PARSEC directory-count distribution.
func (s *Session) Figure12() error {
	return s.dirsDistribution("Figure 12 (PARSEC)", names(Parsec()))
}

// Figure13 regenerates the chunk-commit latency characterization: the
// all-application mean per protocol at 32 and 64 processors (the paper's
// headline numbers are 74/402/107/98 at 32p and 91/411/153/2954 at 64p) and
// a latency histogram per protocol at 64 processors.
func (s *Session) Figure13() error {
	apps := names(Apps())
	s.printf("Figure 13 — chunk commit latency\n")
	for _, cores := range []int{32, 64} {
		s.printf("%d processors:\n", cores)
		for _, protocol := range Protocols {
			var all []uint32
			var sum float64
			for _, app := range apps {
				r, err := s.Result(app, protocol, cores)
				if err != nil {
					return err
				}
				all = append(all, r.Coll.CommitLat...)
			}
			for _, v := range all {
				sum += float64(v)
			}
			mean := sum / float64(len(all))
			s.printf("  %-13s mean=%7.0f cycles", protocol, mean)
			if cores == 64 {
				// Histogram like the paper's distribution plots.
				width, buckets := latencyBuckets(protocol)
				h := histogram(all, width, buckets)
				s.printf("  hist(width=%d):", width)
				for _, v := range h {
					s.printf(" %4.1f%%", v)
				}
			}
			s.printf("\n")
		}
	}
	return nil
}

func latencyBuckets(protocol string) (width uint32, buckets int) {
	switch protocol {
	case ProtoBulkSC, ProtoSEQ:
		return 500, 10
	case ProtoTCC:
		return 100, 10
	default:
		return 50, 10
	}
}

func histogram(vals []uint32, width uint32, buckets int) []float64 {
	h := make([]float64, buckets)
	for _, v := range vals {
		b := int(v / width)
		if b >= buckets {
			b = buckets - 1
		}
		h[b]++
	}
	for i := range h {
		h[i] = h[i] * 100 / float64(len(vals))
	}
	return h
}

// bottleneckRatio generates Figure 14/15 for ScalableBulk, TCC and SEQ at
// 64 processors (BulkSC forms no groups and is omitted, as in the paper).
func (s *Session) bottleneckRatio(title string, apps []string) error {
	s.printf("%s — bottleneck ratio at 64 processors\n", title)
	s.printf("%-14s %12s %12s %12s\n", "app", ProtoScalableBulk, ProtoTCC, ProtoSEQ)
	sums := map[string]float64{}
	for _, app := range apps {
		s.printf("%-14s", app)
		for _, protocol := range []string{ProtoScalableBulk, ProtoTCC, ProtoSEQ} {
			r, err := s.Result(app, protocol, 64)
			if err != nil {
				return err
			}
			br := r.Coll.BottleneckRatio()
			sums[protocol] += br
			s.printf(" %12.2f", br)
		}
		s.printf("\n")
	}
	s.printf("%-14s", "AVERAGE")
	for _, protocol := range []string{ProtoScalableBulk, ProtoTCC, ProtoSEQ} {
		s.printf(" %12.2f", sums[protocol]/float64(len(apps)))
	}
	s.printf("\n")
	return nil
}

// Figure14 regenerates the SPLASH-2 bottleneck ratios.
func (s *Session) Figure14() error {
	return s.bottleneckRatio("Figure 14 (SPLASH-2)", names(Splash2()))
}

// Figure15 regenerates the PARSEC bottleneck ratios.
func (s *Session) Figure15() error {
	return s.bottleneckRatio("Figure 15 (PARSEC)", names(Parsec()))
}

// chunkQueue generates Figure 16/17: average machine-wide chunk queue
// lengths in TCC and SEQ at 64 processors (chunks do not queue in
// ScalableBulk, §6.4.2).
func (s *Session) chunkQueue(title string, apps []string) error {
	s.printf("%s — chunk queue length at 64 processors\n", title)
	s.printf("%-14s %10s %10s\n", "app", ProtoTCC, ProtoSEQ)
	for _, app := range apps {
		s.printf("%-14s", app)
		for _, protocol := range []string{ProtoTCC, ProtoSEQ} {
			r, err := s.Result(app, protocol, 64)
			if err != nil {
				return err
			}
			s.printf(" %10.2f", r.Coll.MeanQueueLength())
		}
		s.printf("\n")
	}
	return nil
}

// Figure16 regenerates the SPLASH-2 chunk queue lengths.
func (s *Session) Figure16() error {
	return s.chunkQueue("Figure 16 (SPLASH-2)", names(Splash2()))
}

// Figure17 regenerates the PARSEC chunk queue lengths.
func (s *Session) Figure17() error {
	return s.chunkQueue("Figure 17 (PARSEC)", names(Parsec()))
}

// traffic generates Figure 18/19: message counts by class at 64 processors,
// normalized to TCC's total for the same application.
func (s *Session) traffic(title string, apps []string) error {
	s.printf("%s — messages by class at 64 processors, %% of TCC total\n", title)
	s.printf("%-12s %-13s %8s %8s %8s %8s %8s %8s\n",
		"app", "protocol", "total", "MemRd", "ShRd", "DirtyRd", "LargeC", "SmallC")
	for _, app := range apps {
		var tccTotal float64
		for _, protocol := range []string{ProtoTCC, ProtoScalableBulk, ProtoSEQ, ProtoBulkSC} {
			r, err := s.Result(app, protocol, 64)
			if err != nil {
				return err
			}
			cls := stats.TrafficClasses(r.Traffic.ByKind)
			var total uint64
			for _, v := range cls {
				total += v
			}
			if protocol == ProtoTCC {
				tccTotal = float64(total)
			}
			s.printf("%-12s %-13s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
				app, protocol, 100*float64(total)/tccTotal,
				100*float64(cls[msg.ClassMemRd])/tccTotal,
				100*float64(cls[msg.ClassRemoteShRd])/tccTotal,
				100*float64(cls[msg.ClassRemoteDirtyRd])/tccTotal,
				100*float64(cls[msg.ClassLargeC])/tccTotal,
				100*float64(cls[msg.ClassSmallC])/tccTotal)
		}
	}
	return nil
}

// Figure18 regenerates the SPLASH-2 traffic characterization.
func (s *Session) Figure18() error {
	return s.traffic("Figure 18 (SPLASH-2)", names(Splash2()))
}

// Figure19 regenerates the PARSEC traffic characterization.
func (s *Session) Figure19() error {
	return s.traffic("Figure 19 (PARSEC)", names(Parsec()))
}

// SquashSummary reports the §6.1 squash statistics for ScalableBulk at 64
// processors: the paper measured 1.5% of chunks squashed by data conflicts
// and 2.3% by signature aliasing.
func (s *Session) SquashSummary() error {
	apps := names(Apps())
	s.printf("Squash classification (ScalableBulk, 64 processors, %% of committed chunks)\n")
	s.printf("%-14s %10s %10s\n", "app", "conflict%", "aliasing%")
	var sc, sa float64
	for _, app := range apps {
		r, err := s.Result(app, ProtoScalableBulk, 64)
		if err != nil {
			return err
		}
		c := 100 * float64(r.Coll.SquashTrueConflict) / float64(r.ChunksCommitted)
		a := 100 * float64(r.Coll.SquashAliasing) / float64(r.ChunksCommitted)
		s.printf("%-14s %9.1f%% %9.1f%%\n", app, c, a)
		sc += c
		sa += a
	}
	n := float64(len(apps))
	s.printf("%-14s %9.1f%% %9.1f%%\n", "AVERAGE", sc/n, sa/n)
	return nil
}

// FigureIDs lists every regenerable figure in order.
func FigureIDs() []int {
	ids := make([]int, 0, 13)
	for i := 7; i <= 19; i++ {
		ids = append(ids, i)
	}
	return ids
}

// Figure dispatches by figure number; Figures 7 and 8 render all four
// protocol panels.
func (s *Session) Figure(id int) error {
	switch id {
	case 7, 8:
		f := s.Figure7
		if id == 8 {
			f = s.Figure8
		}
		for _, p := range Protocols {
			if err := f(p); err != nil {
				return err
			}
		}
		return nil
	case 9:
		return s.Figure9()
	case 10:
		return s.Figure10()
	case 11:
		return s.Figure11()
	case 12:
		return s.Figure12()
	case 13:
		return s.Figure13()
	case 14:
		return s.Figure14()
	case 15:
		return s.Figure15()
	case 16:
		return s.Figure16()
	case 17:
		return s.Figure17()
	case 18:
		return s.Figure18()
	case 19:
		return s.Figure19()
	default:
		return fmt.Errorf("no figure %d (have 7–19)", id)
	}
}

// MeanLatencyTable returns the Figure 13 headline means per protocol at the
// given core count, keyed by protocol (used by tests and EXPERIMENTS.md).
func (s *Session) MeanLatencyTable(cores int) (map[string]float64, error) {
	out := map[string]float64{}
	for _, protocol := range Protocols {
		var sum, n float64
		for _, app := range names(Apps()) {
			r, err := s.Result(app, protocol, cores)
			if err != nil {
				return nil, err
			}
			sum += r.MeanCommitLatency() * float64(len(r.Coll.CommitLat))
			n += float64(len(r.Coll.CommitLat))
		}
		out[protocol] = sum / n
	}
	return out, nil
}

// sortedApps is a test helper: deterministic app iteration order.
func sortedApps() []string {
	out := names(Apps())
	sort.Strings(out)
	return out
}
