package scalablebulk

// Registry conformance suite: every protocol that registers itself — the
// paper's four evaluated protocols AND every variant (today: the OCI-off
// ablation; tomorrow: whatever a contributor adds per DESIGN.md §12) — must
// honor the simulator-wide contracts the differential tests pin for the
// evaluated four: bit-identical determinism under a fixed seed, all chunks
// committed with zero squashes on a conflict-free workload, and identical
// committed-write serialization under forced conflicts. A new protocol
// registered through internal/protocol gets this suite for free; nothing
// here names a concrete engine.

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"scalablebulk/internal/explore"
)

// conformanceNames enumerates every registered protocol, evaluated first.
func conformanceNames() []string {
	var out []string
	for _, p := range RegisteredProtocols() {
		out = append(out, p.Name)
	}
	return out
}

// TestRegistryContents pins what links into the library: the four Table 3
// protocols in the paper's order (all marked evaluated), the OCI-off variant
// after them (not evaluated), and a one-line doc for every entry.
func TestRegistryContents(t *testing.T) {
	infos := RegisteredProtocols()
	want := []string{ProtoScalableBulk, ProtoTCC, ProtoSEQ, ProtoBulkSC}
	if len(infos) < len(want)+1 {
		t.Fatalf("registry has %d protocols, want at least %d: %+v", len(infos), len(want)+1, infos)
	}
	for i, name := range want {
		if infos[i].Name != name {
			t.Errorf("registry[%d] = %q, want %q (Table 3 order)", i, infos[i].Name, name)
		}
		if !infos[i].Evaluated {
			t.Errorf("%s must be marked evaluated", name)
		}
	}
	if !reflect.DeepEqual(Protocols, want) {
		t.Errorf("Protocols = %v, want the evaluated four %v", Protocols, want)
	}
	sawNoOCI := false
	for _, p := range infos {
		if p.Doc == "" {
			t.Errorf("%s registered without a doc line", p.Name)
		}
		if p.Name == ProtoNoOCI {
			sawNoOCI = true
			if p.Evaluated {
				t.Error("the OCI ablation is a variant, not an evaluated protocol")
			}
		}
	}
	if !sawNoOCI {
		t.Errorf("OCI-off variant %q missing from the registry", ProtoNoOCI)
	}
}

// TestConformanceDeterminism: every registered protocol, variants included,
// produces a byte-identical fingerprint on repeated runs of one seed.
func TestConformanceDeterminism(t *testing.T) {
	const app, seed = "Barnes", 7
	for _, name := range conformanceNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			first := serialFingerprint(t, app, name, 16, seed)
			again := serialFingerprint(t, app, name, 16, seed)
			if first != again {
				t.Errorf("two serial runs differ:\n--- run 1\n%s--- run 2\n%s", first, again)
			}
		})
	}
}

// TestConformanceConflictFree: on disjoint per-thread footprints every
// registered protocol commits all chunks, squashes nothing, and applies the
// same committed-write multiset as the others.
func TestConformanceConflictFree(t *testing.T) {
	const cores, chunks = 16, 3
	prof := conflictFreeProfile()
	var refWrites map[writeKey]int
	var refProto string
	for _, name := range conformanceNames() {
		r, writes := runWithWrites(t, prof, name, cores, chunks)
		if got, want := r.ChunksCommitted, uint64(cores*chunks); got != want {
			t.Errorf("%s: committed %d chunks, want %d", name, got, want)
		}
		if r.Squashes != 0 {
			t.Errorf("%s: %d squashes on a conflict-free workload", name, r.Squashes)
		}
		if refWrites == nil {
			refWrites, refProto = writes, name
			if len(writes) == 0 {
				t.Fatalf("%s: no committed writes observed", name)
			}
			continue
		}
		if !reflect.DeepEqual(writes, refWrites) {
			t.Errorf("%s committed-write multiset differs from %s: %s",
				name, refProto, diffWrites(refWrites, writes))
		}
	}
}

// TestConformanceForcedConflict: under maximal contention every registered
// protocol still commits each chunk exactly once and serializes to the same
// committed-write multiset.
func TestConformanceForcedConflict(t *testing.T) {
	const cores, chunks = 16, 3
	prof := forcedConflictProfile()
	var refWrites map[writeKey]int
	var refProto string
	for _, name := range conformanceNames() {
		r, writes := runWithWrites(t, prof, name, cores, chunks)
		if got, want := r.ChunksCommitted, uint64(cores*chunks); got != want {
			t.Errorf("%s: committed %d chunks, want %d", name, got, want)
		}
		if refWrites == nil {
			refWrites, refProto = writes, name
			continue
		}
		if !reflect.DeepEqual(writes, refWrites) {
			t.Errorf("%s committed-write multiset differs from %s: %s",
				name, refProto, diffWrites(refWrites, writes))
		}
	}
}

// TestWorkloadRegistryContents pins what the workload registry links in: the
// synthetic default first, at least four adversarial generators, and a doc
// line on every entry.
func TestWorkloadRegistryContents(t *testing.T) {
	infos := RegisteredWorkloads()
	if len(infos) == 0 || infos[0].Name != "synthetic" {
		t.Fatalf("workload registry must list the synthetic default first, got %+v", infos)
	}
	if infos[0].Adversarial {
		t.Error("the synthetic default must not be marked adversarial")
	}
	adversarial := 0
	for _, w := range infos {
		if w.Doc == "" {
			t.Errorf("%s registered without a doc line", w.Name)
		}
		if w.Adversarial {
			adversarial++
		}
		if w.Name != "synthetic" {
			if _, ok := WorkloadProfile(w.Name); !ok {
				t.Errorf("%s has no label profile; sweeps cannot address it", w.Name)
			}
		}
	}
	if adversarial < 4 {
		t.Errorf("registry has %d adversarial generators, want ≥4", adversarial)
	}
	for _, name := range []string{"zipf", "pipeline", "convoy", "stormdir", "kvstore"} {
		if !IsWorkload(name) {
			t.Errorf("adversarial generator %q not registered", name)
		}
	}
	if IsWorkload("no-such-source") {
		t.Error("IsWorkload accepted an unknown name")
	}
	if !IsWorkload("") || !IsWorkload("replay:whatever.sbwt") {
		t.Error("IsWorkload must accept the empty (synthetic) and replay specs without touching the file")
	}
}

// TestConformanceWorkloadMatrix runs every registered protocol — variants
// included — against every registered workload source, requiring all chunks
// committed in per-core program order and cross-protocol agreement on the
// committed-write multiset. The differential matrix covers the evaluated
// four; this is the same contract extended to whatever else registered.
func TestConformanceWorkloadMatrix(t *testing.T) {
	const cores, chunks = 8, 2
	for _, w := range matrixWorkloads(t) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			var refWrites map[writeKey]int
			var refProto string
			for _, name := range conformanceNames() {
				r, writes, order := runWorkloadWithWrites(t, w.Name, w.Prof, name, cores, chunks)
				if got, want := r.ChunksCommitted, uint64(cores*chunks); got != want {
					t.Errorf("%s/%s: committed %d chunks, want %d", w.Name, name, got, want)
				}
				checkCommitOrder(t, w.Name, name, order, chunks)
				if refWrites == nil {
					refWrites, refProto = writes, name
					continue
				}
				if !reflect.DeepEqual(writes, refWrites) {
					t.Errorf("%s: %s committed-write multiset differs from %s: %s",
						w.Name, name, refProto, diffWrites(refWrites, writes))
				}
			}
		})
	}
}

// TestConformanceWorkloadDeterminism: every registered workload source is
// bit-identical per seed (two serial runs agree) and actually seeded (a
// different seed moves the fingerprint).
func TestConformanceWorkloadDeterminism(t *testing.T) {
	for _, w := range RegisteredWorkloads() {
		if !w.Adversarial {
			continue // the synthetic source is covered by TestConformanceDeterminism
		}
		name := w.Name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			first := serialFingerprint(t, name, ProtoScalableBulk, 16, 7)
			again := serialFingerprint(t, name, ProtoScalableBulk, 16, 7)
			if first != again {
				t.Errorf("two serial runs differ:\n--- run 1\n%s--- run 2\n%s", first, again)
			}
			other := serialFingerprint(t, name, ProtoScalableBulk, 16, 8)
			if other == first {
				t.Errorf("seed 7 and seed 8 produced identical fingerprints; the source ignores its seed")
			}
		})
	}
}

// TestConformanceModelCheck: every registered protocol survives a bounded
// systematic exploration of its 2-core × 2-chunk forced-conflict
// interleavings with no invariant, serializability, liveness or quiescence
// violation. The budget keeps this a smoke (a few hundred schedules per
// protocol; "bounded" is an acceptable outcome) — cmd/sbcheck runs the same
// exploration to exhaustion, and CI's check-smoke job does so for every
// protocol on every push.
func TestConformanceModelCheck(t *testing.T) {
	for _, name := range conformanceNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			opts := explore.DefaultOptions(name)
			opts.MaxRuns = 500
			opts.MaxStates = 5000
			rep, err := explore.Explore(opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s", rep.Summary())
			if !rep.Clean() {
				t.Errorf("model checker found a violation: %s\ncounterexample choices: %v\n%s",
					rep.Violation, rep.Schedule.Choices, rep.Dump)
			}
		})
	}
}

// TestVariantRegistersOutsideSystem enforces the registry's reason to exist:
// a protocol variant (the OCI-off ablation) plugs in purely through
// self-registration, with zero edits to internal/system — system.go neither
// names the variant nor imports any concrete engine package.
func TestVariantRegistersOutsideSystem(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("internal", "system", "system.go"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(src)
	if strings.Contains(s, "NoOCI") {
		t.Error("internal/system/system.go mentions NoOCI; variants must register themselves")
	}
	for _, pkg := range []string{"core", "tcc", "seqpro", "bulksc"} {
		if strings.Contains(s, `"scalablebulk/internal/`+pkg+`"`) {
			t.Errorf("internal/system/system.go imports engine package %s directly; it must only blank-import internal/protocol/all", pkg)
		}
	}
}
